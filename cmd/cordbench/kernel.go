package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cord/internal/exp"
	rt "cord/internal/obs/runtime"
	"cord/internal/proto"
	"cord/internal/sim"
	"cord/internal/workload"
	"cord/internal/workload/kvsvc"
)

// kernelResult is one row of BENCH_kernel.json: how fast the event kernel
// retires simulation events under a given protocol scheme and fabric, and
// how much it allocates doing so. Allocations are amortized over the whole
// run (system construction included), so steady-state numbers are lower.
type kernelResult struct {
	Scheme        string  `json:"scheme"`
	Fabric        string  `json:"fabric"`
	Workload      string  `json:"workload"`
	Events        uint64  `json:"events"`
	WallMs        float64 `json:"wall_ms"`
	NsPerEvent    float64 `json:"ns_per_event"`
	EventsPerSec  float64 `json:"events_per_sec"`
	AllocsPerEvnt float64 `json:"allocs_per_event"`
}

// parallelResult is one row of the conservative-parallel engine sweep: the
// same partitioned simulation at a given worker count. Speedup is relative
// to the 1-worker row of the same topology; on a single-core machine it
// measures scheduling overhead, not parallelism — which is why NumCPU is
// recorded alongside. The efficiency columns come from the runtime telemetry
// collector riding the run and attribute the gap to 8x: what fraction of the
// window capacity did useful work, and whether the loss was barrier
// imbalance, steal/start lag, or the single-threaded cross-host merge.
type parallelResult struct {
	Hosts        int     `json:"hosts"`
	Workers      int     `json:"workers"`
	Events       uint64  `json:"events"`
	WallMs       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_1_worker"`

	Windows     uint64  `json:"windows"`
	Efficiency  float64 `json:"efficiency"`
	LostBarrier float64 `json:"lost_barrier"`
	LostSteal   float64 `json:"lost_steal"`
	LostMerge   float64 `json:"lost_merge"`
	Dominant    string  `json:"dominant_loss"`
}

// kvResult is one row of the KV-service sweep: how fast the kernel pushes
// service requests through a reactive (pull-based) op source, wall-clock, and
// what each request costs in allocations. SimP99Ns is the simulated tail for
// cross-checking against the cordsim curve, not a kernel-speed figure.
type kvResult struct {
	Scheme       string  `json:"scheme"`
	Hosts        int     `json:"hosts"`
	Requests     uint64  `json:"requests"`
	Events       uint64  `json:"events"`
	WallMs       float64 `json:"wall_ms"`
	ReqPerSec    float64 `json:"requests_per_sec"`
	AllocsPerReq float64 `json:"allocs_per_request"`
	SimP99Ns     float64 `json:"sim_p99_ns"`
}

// kernelReport is the machine-readable benchmark artifact committed as
// BENCH_kernel.json so the kernel's performance trajectory is recorded in
// the repo rather than in CI logs.
type kernelReport struct {
	GeneratedBy string           `json:"generated_by"`
	GoVersion   string           `json:"go_version"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	Scheduler   kernelResult     `json:"scheduler"`
	Protocols   []kernelResult   `json:"protocols"`
	KV          []kvResult       `json:"kv"`
	Parallel    []parallelResult `json:"parallel"`
}

// benchScheduler measures the bare engine with no protocol on top: a
// steady-state churn of 1024 in-flight events with pseudo-random delays,
// the same shape as BenchmarkEngineChurn. The engine is warmed first so the
// measurement sees the zero-allocation steady state.
func benchScheduler(events int) kernelResult {
	eng := sim.NewEngine(1)
	lcg := uint64(0x9E3779B97F4A7C15)
	next := func() sim.Time {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return 1 + sim.Time(lcg>>58)
	}
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < events {
			eng.Schedule(next(), tick)
		}
	}
	const inFlight = 1024
	for i := 0; i < inFlight; i++ {
		eng.Schedule(next(), tick)
	}
	// Warm slab, wheel, and free list before timing.
	if err := eng.RunUntil(eng.Now() + 4096); err != nil {
		panic(err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	before := eng.Executed()
	start := time.Now()
	if err := eng.Run(); err != nil {
		panic(err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := eng.Executed() - before
	return kernelResult{
		Scheme:        "none",
		Fabric:        "none",
		Workload:      fmt.Sprintf("churn/%d-inflight", inFlight),
		Events:        n,
		WallMs:        float64(wall.Nanoseconds()) / 1e6,
		NsPerEvent:    float64(wall.Nanoseconds()) / float64(n),
		EventsPerSec:  float64(n) / wall.Seconds(),
		AllocsPerEvnt: float64(m1.Mallocs-m0.Mallocs) / float64(n),
	}
}

// benchProtocol runs one full protocol simulation and reports kernel
// throughput: every scheduled event — core issue, NoC hop, directory
// processing — retires through the same two-level queue.
func benchProtocol(s exp.Scheme, ic exp.Interconnect) (kernelResult, error) {
	p := workload.Micro(256, 64, 3, 20000)
	nc := exp.NetConfig(ic)
	cores, progs, err := p.Programs(nc)
	if err != nil {
		return kernelResult{}, err
	}
	sys := proto.NewSystem(42, nc, proto.RC)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if _, err := proto.Exec(sys, exp.Builder(s), cores, progs); err != nil {
		return kernelResult{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := sys.Executed()
	return kernelResult{
		Scheme:        string(s),
		Fabric:        string(ic),
		Workload:      p.Name,
		Events:        n,
		WallMs:        float64(wall.Nanoseconds()) / 1e6,
		NsPerEvent:    float64(wall.Nanoseconds()) / float64(n),
		EventsPerSec:  float64(n) / wall.Seconds(),
		AllocsPerEvnt: float64(m1.Mallocs-m0.Mallocs) / float64(n),
	}, nil
}

// benchKV runs the sharded KV service under one scheme on the Table 1 CXL
// topology and reports wall-clock request throughput and per-request
// allocation cost — the service-workload counterpart of benchProtocol. The
// source steady state is allocation-free; the per-request figure amortizes
// system and service construction.
func benchKV(s exp.Scheme) (kvResult, error) {
	cfg := kvsvc.Default()
	cfg.Clients = 64
	cfg.Requests = 64
	nc := exp.NetConfig(exp.CXL)
	svc, err := cfg.Build(nc)
	if err != nil {
		return kvResult{}, err
	}
	sys := proto.NewSystem(42, nc, proto.RC)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if _, err := proto.ExecSources(sys, exp.Builder(s), svc.Cores(), svc.Sources()); err != nil {
		return kvResult{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	st := svc.Stats()
	n := st.Total()
	d := st.Overall()
	return kvResult{
		Scheme:       string(s),
		Hosts:        nc.Hosts,
		Requests:     n,
		Events:       sys.Executed(),
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		ReqPerSec:    float64(n) / wall.Seconds(),
		AllocsPerReq: float64(m1.Mallocs-m0.Mallocs) / float64(n),
		SimP99Ns:     sim.Nanos(d.Quantile(0.99)),
	}, nil
}

// benchParallel runs one CORD workload on a hosts-host CXL topology at the
// given worker count and reports partitioned-engine throughput. The workload
// scales with the host count (every host participates), so per-window
// parallelism is real at every size.
func benchParallel(hosts, workers int) (parallelResult, error) {
	p := workload.ATA(hosts, 400)
	nc := exp.NetConfig(exp.CXL)
	nc.Hosts = hosts
	cores, progs, err := p.Programs(nc)
	if err != nil {
		return parallelResult{}, err
	}
	sys := proto.NewSystem(42, nc, proto.RC)
	sys.Workers = workers
	col := rt.NewCollector(hosts)
	sys.AttachRuntime(col)
	start := time.Now()
	if _, err := proto.Exec(sys, exp.Builder(exp.SchemeCORD), cores, progs); err != nil {
		return parallelResult{}, err
	}
	wall := time.Since(start)
	n := sys.Executed()
	sc := rt.Analyze(col.Snapshot())
	return parallelResult{
		Hosts:        hosts,
		Workers:      workers,
		Events:       n,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		EventsPerSec: float64(n) / wall.Seconds(),
		Windows:      sc.Windows,
		Efficiency:   sc.Efficiency,
		LostBarrier:  sc.LostBarrier,
		LostSteal:    sc.LostSteal,
		LostMerge:    sc.LostMerge,
		Dominant:     sc.Dominant,
	}, nil
}

// kernelBench writes BENCH_kernel.json to path.
func kernelBench(path string) error {
	rep := kernelReport{
		GeneratedBy: "cordbench -kernel",
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Scheduler:   benchScheduler(2_000_000),
	}
	for _, ic := range exp.Interconnects() {
		for _, s := range exp.Schemes() {
			r, err := benchProtocol(s, ic)
			if err != nil {
				return err
			}
			rep.Protocols = append(rep.Protocols, r)
			fmt.Fprintf(os.Stderr, "kernel: %-4s %-3s %8d events  %6.1f ns/event  %5.2f Mevents/s  %.3f allocs/event\n",
				r.Scheme, r.Fabric, r.Events, r.NsPerEvent, r.EventsPerSec/1e6, r.AllocsPerEvnt)
		}
	}
	for _, s := range exp.Schemes() {
		r, err := benchKV(s)
		if err != nil {
			return err
		}
		rep.KV = append(rep.KV, r)
		fmt.Fprintf(os.Stderr, "kv: %-4s %3d hosts %7d requests  %6.2f Mreq/s  %.3f allocs/request  sim p99 %.0f ns\n",
			r.Scheme, r.Hosts, r.Requests, r.ReqPerSec/1e6, r.AllocsPerReq, r.SimP99Ns)
	}
	for _, hosts := range []int{8, 64} {
		var base float64
		for _, workers := range []int{1, 2, 4, 8} {
			r, err := benchParallel(hosts, workers)
			if err != nil {
				return err
			}
			if workers == 1 {
				base = r.WallMs
			}
			if base > 0 {
				r.Speedup = base / r.WallMs
			}
			rep.Parallel = append(rep.Parallel, r)
			fmt.Fprintf(os.Stderr, "parallel: %3d hosts %2d workers %8d events  %5.2f Mevents/s  %.2fx vs 1 worker  eff %4.1f%% (%s-bound)\n",
				r.Hosts, r.Workers, r.Events, r.EventsPerSec/1e6, r.Speedup,
				r.Efficiency*100, r.Dominant)
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
