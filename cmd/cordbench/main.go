// Command cordbench regenerates the paper's evaluation figures and tables.
//
//	cordbench -fig 7          # one figure
//	cordbench -table 3        # Table 3
//	cordbench -all            # everything (several minutes)
//	cordbench -all -csv out/  # also write CSV files
//
// Each figure prints the same rows/series the paper plots: normalized
// execution time and inter-PU traffic for Figs. 7/13, overhead percentages
// for Fig. 2, parameter sweeps for Figs. 8-10, storage bytes for
// Figs. 11-12, and the area/power/energy table for Table 3.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cord/internal/exp"
	"cord/internal/obs"
	"cord/internal/obs/live"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate (2, 7, 8, 9, 10, 11, 12, 13)")
		table    = flag.Int("table", 0, "table to regenerate (2 or 3)")
		all      = flag.Bool("all", false, "regenerate every figure and table")
		ablation = flag.Bool("ablation", false, "run the design-choice ablations")
		self     = flag.Bool("selfcheck", false, "verify the paper's headline claims end-to-end")
		csv      = flag.String("csv", "", "directory to also write CSV files into")
		httpAddr = flag.String("http", "", "serve live sweep progress/metrics/pprof on this address, e.g. localhost:6060")
		progress = flag.Bool("progress", false, "print sweep progress lines to stderr")
		kernel   = flag.String("kernel", "", "measure event-kernel throughput and write BENCH_kernel.json to this path (- for stdout)")
		workers  = flag.Int("sim-workers", 0, "host shards advanced concurrently by the partitioned engine (<=1 serial; results identical for any value)")
	)
	flag.Parse()
	exp.SetSimWorkers(*workers)

	// Sweep progress and aggregate metrics are observable two ways: -progress
	// prints the tracker to stderr each second, -http serves it (with the
	// shared metrics registry and pprof) until the process exits. Both hook
	// the exp package's sweeps.
	if *progress || *httpAddr != "" {
		prog := live.NewProgress()
		exp.SetProgress(prog)
		if *httpAddr != "" {
			rec := obs.NewMetricsOnly()
			exp.SetRecorder(rec)
			srv, err := live.NewServer(*httpAddr, rec, prog, map[string]string{"cmd": "cordbench"})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cordbench:", err)
				os.Exit(1)
			}
			srv.Start()
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "live introspection on http://%s\n", srv.Addr())
		}
		if *progress {
			stop := prog.StartPrinter(os.Stderr, time.Second)
			defer stop()
		}
	}

	if *kernel != "" {
		if err := kernelBench(*kernel); err != nil {
			fmt.Fprintln(os.Stderr, "cordbench:", err)
			os.Exit(1)
		}
		return
	}

	if *self {
		lines, ok, err := exp.SelfCheck()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cordbench:", err)
			os.Exit(1)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		if !ok {
			fmt.Println("artifact evaluation FAILED")
			os.Exit(1)
		}
		fmt.Println("Artifact evaluation complete")
		return
	}

	figs := map[int]func(*writer) error{
		2: fig2, 7: fig7, 8: fig8, 9: fig9, 10: fig10, 11: fig11, 12: fig12, 13: fig13,
	}
	run := func(n int) {
		f, ok := figs[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "cordbench: no figure %d\n", n)
			os.Exit(2)
		}
		w := newWriter(*csv, fmt.Sprintf("fig%d", n))
		fmt.Printf("==== Figure %d ====\n", n)
		if err := f(w); err != nil {
			fmt.Fprintln(os.Stderr, "cordbench:", err)
			os.Exit(1)
		}
		w.close()
	}
	switch {
	case *all:
		for _, n := range []int{2, 7, 8, 9, 10, 11, 12, 13} {
			run(n)
		}
		for _, emit := range []struct {
			name string
			fn   func(*writer) error
		}{{"table2", table2}, {"table3", func(w *writer) error { table3(w); return nil }},
			{"ablation", ablations}} {
			w := newWriter(*csv, emit.name)
			fmt.Printf("==== %s ====\n", emit.name)
			if err := emit.fn(w); err != nil {
				fmt.Fprintln(os.Stderr, "cordbench:", err)
				os.Exit(1)
			}
			w.close()
		}
	case *fig != 0:
		run(*fig)
	case *table == 2:
		w := newWriter(*csv, "table2")
		if err := table2(w); err != nil {
			fmt.Fprintln(os.Stderr, "cordbench:", err)
			os.Exit(1)
		}
		w.close()
	case *table == 3:
		w := newWriter(*csv, "table3")
		table3(w)
		w.close()
	case *ablation:
		w := newWriter(*csv, "ablation")
		if err := ablations(w); err != nil {
			fmt.Fprintln(os.Stderr, "cordbench:", err)
			os.Exit(1)
		}
		w.close()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// table2 reproduces the workload characterization of Table 2 from the
// generated traces.
func table2(w *writer) error {
	rows, err := exp.Table2()
	if err != nil {
		return err
	}
	w.row("app", "relaxed_gran_B", "release_gran_B", "fanout", "class", "mp_compatible")
	for _, r := range rows {
		mp := "yes"
		if !r.MPCompatible {
			mp = "no (ISA2 pattern)"
		}
		w.row(r.App, f(r.RelaxedGran), f0(r.ReleaseGran), f(r.Fanout), r.FanoutClass, mp)
	}
	return nil
}

// ablations prints the design-choice studies.
func ablations(w *writer) error {
	w.row("study", "variant", "time/CORD", "traffic/CORD")
	pts, err := exp.AblationNotifications()
	if err != nil {
		return err
	}
	for _, p := range pts {
		w.row("notifications-off "+p.Name, p.Variant, f(p.Time), f(p.Bytes))
	}
	pts, err = exp.AblationTableCap()
	if err != nil {
		return err
	}
	for _, p := range pts {
		w.row("table-capacity "+p.Name, p.Variant, f(p.Time), f(p.Bytes))
	}
	return nil
}

// writer tees rows to stdout (aligned) and optionally to a CSV file.
type writer struct {
	csv *os.File
}

func newWriter(dir, name string) *writer {
	w := &writer{}
	if dir == "" {
		return w
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "cordbench:", err)
		os.Exit(1)
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cordbench:", err)
		os.Exit(1)
	}
	w.csv = f
	return w
}

func (w *writer) row(cols ...string) {
	fmt.Println(strings.Join(cols, "\t"))
	if w.csv != nil {
		fmt.Fprintln(w.csv, strings.Join(cols, ","))
	}
}

func (w *writer) close() {
	if w.csv != nil {
		w.csv.Close()
	}
}

func f(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

func fig2(w *writer) error {
	rows, err := exp.Fig2()
	if err != nil {
		return err
	}
	w.row("app", "fabric", "exec_time_pct", "traffic_pct")
	for _, r := range rows {
		w.row(r.App, string(r.Fabric), f(r.TimePct), f(r.TrafficPct))
	}
	return nil
}

func endToEnd(w *writer, cells []exp.Cell) {
	w.row("app", "fabric", "scheme", "time_ns", "traffic_B", "time/CORD", "traffic/CORD")
	for _, c := range cells {
		if c.Skipped {
			w.row(c.App, string(c.Fabric), string(c.Scheme), "N/A", "N/A", "N/A", "N/A")
			continue
		}
		w.row(c.App, string(c.Fabric), string(c.Scheme),
			f0(c.Time), f0(c.Traffic),
			f(exp.Norm(cells, c, false)), f(exp.Norm(cells, c, true)))
	}
	for _, ic := range exp.Interconnects() {
		for _, s := range exp.Schemes() {
			if s == exp.SchemeCORD {
				continue
			}
			w.row("GMEAN", string(ic), string(s),
				"", "",
				f(exp.GeoMeanRatio(cells, s, ic, false)),
				f(exp.GeoMeanRatio(cells, s, ic, true)))
		}
	}
}

func fig7(w *writer) error {
	cells, err := exp.Fig7()
	if err != nil {
		return err
	}
	endToEnd(w, cells)
	return nil
}

func fig13(w *writer) error {
	cells, err := exp.Fig13()
	if err != nil {
		return err
	}
	endToEnd(w, cells)
	return nil
}

func fig8(w *writer) error {
	pts, err := exp.Fig8()
	if err != nil {
		return err
	}
	w.row("panel", "x", "fabric", "MP_ns", "CORD_ns", "SO_ns", "MP_B", "CORD_B", "SO_B")
	for _, p := range pts {
		w.row(p.Panel, fmt.Sprint(p.X), string(p.Fabric),
			f0(p.Time[exp.SchemeMP]), f0(p.Time[exp.SchemeCORD]), f0(p.Time[exp.SchemeSO]),
			f0(p.Bytes[exp.SchemeMP]), f0(p.Bytes[exp.SchemeCORD]), f0(p.Bytes[exp.SchemeSO]))
	}
	return nil
}

func fig9(w *writer) error {
	pts, err := exp.Fig9()
	if err != nil {
		return err
	}
	w.row("panel", "param", "latency_ns", "SO_time/CORD", "SO_traffic/CORD")
	for _, p := range pts {
		w.row(p.Panel, fmt.Sprint(p.Param), fmt.Sprint(p.LatencyNs), f(p.TimeRatio), f(p.ByteRatio))
	}
	return nil
}

func fig10(w *writer) error {
	pts, err := exp.Fig10()
	if err != nil {
		return err
	}
	w.row("panel", "bits", "fabric", "CORD_ns", "SEQ8_ns", "SEQ40_ns", "CORD_B", "SEQ8_B", "SEQ40_B")
	for _, p := range pts {
		w.row(p.Panel, fmt.Sprint(p.Bits), string(p.Fabric),
			f0(p.CordTime), f0(p.Seq8Time), f0(p.Seq40Time),
			f0(p.CordBytes), f0(p.Seq8Bytes), f0(p.Seq40Bytes))
	}
	return nil
}

func fig11(w *writer) error {
	rows, err := exp.Fig11()
	if err != nil {
		return err
	}
	w.row("app", "hosts", "fabric", "proc_B", "dir_B")
	for _, r := range rows {
		w.row(r.App, fmt.Sprint(r.Hosts), string(r.Fabric),
			fmt.Sprint(r.ProcBytes), fmt.Sprint(r.DirBytes))
	}
	return nil
}

func fig12(w *writer) error {
	rows, err := exp.Fig11()
	if err != nil {
		return err
	}
	w.row("hosts", "fabric", "proc_counters_B", "proc_other_B", "dir_netbuf_B", "dir_tables_B")
	for _, r := range exp.Fig12(rows) {
		w.row(fmt.Sprint(r.Hosts), string(r.Fabric),
			fmt.Sprint(r.ProcCounters), fmt.Sprint(r.ProcOther),
			fmt.Sprint(r.DirNetBuf), fmt.Sprint(r.DirTables))
	}
	return nil
}

func table3(w *writer) {
	w.row("component", "entries", "area_mm2", "power_mW", "read_nJ", "write_nJ")
	for _, r := range exp.Table3() {
		if r.Total {
			w.row(r.Component, "", f(r.AreaMM2), f(r.PowerMW), "", "")
			continue
		}
		w.row(r.Component, r.Entries, f(r.AreaMM2), f(r.PowerMW), f(r.ReadNJ), f(r.WriteNJ))
	}
}
