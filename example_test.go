package cord_test

import (
	"fmt"

	"cord"
)

// The godoc examples double as end-to-end checks of the public API: they
// run the deterministic simulator, so their outputs are stable.

func ExampleSimulate() {
	w := cord.Microbench(64, 4096, 1, 10)
	r, err := cord.Simulate(w, cord.CORD, cord.CXLSystem())
	if err != nil {
		panic(err)
	}
	s, _ := cord.Simulate(w, cord.SO, cord.CXLSystem())
	fmt.Printf("CORD acks: %d bytes\n", r.AckBytes())
	fmt.Printf("SO acks:   %d bytes\n", s.AckBytes())
	fmt.Printf("CORD is faster: %v\n", r.ExecNanos() < s.ExecNanos())
	// Output:
	// CORD acks: 160 bytes
	// SO acks:   10400 bytes
	// CORD is faster: true
}

func ExampleVerify() {
	var isa2 cord.LitmusTest
	for _, t := range cord.LitmusSuite() {
		if t.Name == "ISA2" {
			isa2 = t
		}
	}
	c, _ := cord.Verify(isa2, cord.CORD)
	m, _ := cord.Verify(isa2, cord.MP)
	fmt.Printf("CORD forbids ISA2's outcome: %v\n", !c.ForbiddenReachable)
	fmt.Printf("MP violates it: %v\n", m.ForbiddenReachable)
	// Output:
	// CORD forbids ISA2's outcome: true
	// MP violates it: true
}

func ExampleCompare() {
	w := cord.Microbench(64, 2048, 3, 20)
	rs, err := cord.Compare(w, cord.CXLSystem())
	if err != nil {
		panic(err)
	}
	fmt.Printf("protocols compared: %d\n", len(rs))
	fmt.Printf("SO slower than CORD: %v\n",
		rs[cord.SO].ExecNanos() > rs[cord.CORD].ExecNanos())
	// Output:
	// protocols compared: 4
	// SO slower than CORD: true
}

func ExampleSimulateProgram() {
	flag := cord.ComposeAddr(1, 0, 0)
	progs := map[cord.CoreRef]cord.Program{
		{Host: 0, Core: 0}: {
			cord.StoreRelaxed(cord.ComposeAddr(1, 0, 64), 64),
			cord.FetchAddOp(flag, 1, cord.OrdRelease),
			cord.FullBarrier(),
		},
		{Host: 1, Core: 0}: {cord.AcquireLoad(flag, 1)},
	}
	r, err := cord.SimulateProgram(progs, cord.CORD, cord.CXLSystem())
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed: %v\n", r.ExecNanos() > 0)
	// Output:
	// completed: true
}
