package cord

import (
	"io"

	"cord/internal/obs"
	rt "cord/internal/obs/runtime"
	"cord/internal/proto"
)

// TraceOptions configures SimulateObserved.
type TraceOptions struct {
	// Sample keeps 1-in-Sample traced transactions (deterministic,
	// counter-based; <= 1 records everything). Metrics are never sampled.
	Sample int
	// MetricsOnly skips event capture entirely and keeps only the metrics
	// registry, for long runs where the event stream would be too large.
	MetricsOnly bool
	// Recorder, when non-nil, receives the observation instead of a freshly
	// created recorder (Sample and MetricsOnly are then ignored — configure
	// the recorder directly). The live introspection server attaches this
	// way so /metrics can scrape a run in flight.
	Recorder *obs.Recorder
	// Runtime, when non-nil, collects simulator-runtime telemetry (per-shard
	// window timings, steal counters, cross-host merge census) for
	// partitioned multi-host runs. It rides a channel of its own: attaching
	// it never changes the deterministic trace/metrics/stats bytes. Ignored
	// on single-host systems, which have no parallel runtime to observe.
	Runtime *rt.Collector
}

// NewRuntimeCollector creates a simulator-runtime telemetry collector to pass
// as TraceOptions.Runtime (the collector type itself lives in an internal
// package, so external callers construct it here; its methods — Snapshot,
// Windows, Events, SetOnWindow — remain fully usable on the returned value).
// The collector sizes itself to the system's host count on the first observed
// window.
func NewRuntimeCollector() *rt.Collector { return rt.NewCollector(0) }

// AnalyzeRuntime computes the parallel-efficiency breakdown of a runtime
// report (a Collector.Snapshot): efficiency, lost-capacity attribution
// across barrier imbalance / steal lag / cross-host merge, and a per-bucket
// timeline — the same analysis `cordtrace scaling` renders.
func AnalyzeRuntime(rep *rt.Report) rt.Scaling { return rt.Analyze(rep) }

// WriteRuntimeScaling renders a report's scaling analysis as the
// human-readable table `cordtrace scaling` prints.
func WriteRuntimeScaling(w io.Writer, rep *rt.Report) error {
	return rt.WriteScaling(w, rep)
}

// Observation holds what a traced simulation recorded: the structured event
// stream and the metrics registry.
type Observation struct {
	rec *obs.Recorder
}

// Events returns the recorded event stream (nil under MetricsOnly).
func (o *Observation) Events() []obs.Event { return o.rec.Events() }

// Metrics returns the metrics registry.
func (o *Observation) Metrics() *obs.Metrics { return o.rec.Metrics() }

// WriteJSONL exports the event stream as JSON lines.
func (o *Observation) WriteJSONL(w io.Writer) error {
	return obs.WriteJSONL(w, o.rec.Events())
}

// WriteChromeTrace exports the event stream as Chrome trace_event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
func (o *Observation) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, o.rec.Events())
}

// WriteChromeTraceRuntime is WriteChromeTrace with the simulator-runtime
// timeline track group appended: one track per host shard, window slices
// split into idle/busy/barrier from the report's wall-clock measurements.
// Because those measurements are non-deterministic, a trace written this way
// is not byte-stable across runs — it is opt-in (cordsim only merges the
// track when a runtime collector was attached), and the plain
// WriteChromeTrace output stays deterministic.
func (o *Observation) WriteChromeTraceRuntime(w io.Writer, rep *rt.Report) error {
	return obs.WriteChromeTraceWith(w, o.rec.Events(), func(emit func(format string, args ...any)) {
		rt.EmitChrome(rep, emit)
	})
}

// WriteMetricsJSON exports the metrics registry as indented JSON.
func (o *Observation) WriteMetricsJSON(w io.Writer) error {
	return o.rec.Metrics().WriteJSON(w)
}

// SimulateObserved is Simulate with observability attached: it additionally
// returns the recorded protocol events and metrics. Tracing never perturbs the
// simulation — the returned Result is identical to an untraced Simulate run
// with the same arguments.
func SimulateObserved(w Workload, p Protocol, s System, opt TraceOptions) (*Result, *Observation, error) {
	nc, err := s.netConfig()
	if err != nil {
		return nil, nil, err
	}
	b, err := builder(p)
	if err != nil {
		return nil, nil, err
	}
	cores, progs, err := w.Programs(nc)
	if err != nil {
		return nil, nil, err
	}
	rec := opt.Recorder
	if rec == nil {
		rec = obs.New()
		if opt.MetricsOnly {
			rec = obs.NewMetricsOnly()
		}
		rec.SetSample(opt.Sample)
	}
	sys := proto.NewSystem(s.Seed, nc, s.mode())
	sys.Workers = s.SimWorkers
	sys.Observe(rec)
	if opt.Runtime != nil {
		sys.AttachRuntime(opt.Runtime)
	}
	run, err := proto.Exec(sys, b, cores, progs)
	if err != nil {
		return nil, nil, err
	}
	return &Result{run: run}, &Observation{rec: rec}, nil
}
