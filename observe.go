package cord

import (
	"io"

	"cord/internal/obs"
	"cord/internal/proto"
)

// TraceOptions configures SimulateObserved.
type TraceOptions struct {
	// Sample keeps 1-in-Sample traced transactions (deterministic,
	// counter-based; <= 1 records everything). Metrics are never sampled.
	Sample int
	// MetricsOnly skips event capture entirely and keeps only the metrics
	// registry, for long runs where the event stream would be too large.
	MetricsOnly bool
	// Recorder, when non-nil, receives the observation instead of a freshly
	// created recorder (Sample and MetricsOnly are then ignored — configure
	// the recorder directly). The live introspection server attaches this
	// way so /metrics can scrape a run in flight.
	Recorder *obs.Recorder
}

// Observation holds what a traced simulation recorded: the structured event
// stream and the metrics registry.
type Observation struct {
	rec *obs.Recorder
}

// Events returns the recorded event stream (nil under MetricsOnly).
func (o *Observation) Events() []obs.Event { return o.rec.Events() }

// Metrics returns the metrics registry.
func (o *Observation) Metrics() *obs.Metrics { return o.rec.Metrics() }

// WriteJSONL exports the event stream as JSON lines.
func (o *Observation) WriteJSONL(w io.Writer) error {
	return obs.WriteJSONL(w, o.rec.Events())
}

// WriteChromeTrace exports the event stream as Chrome trace_event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
func (o *Observation) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, o.rec.Events())
}

// WriteMetricsJSON exports the metrics registry as indented JSON.
func (o *Observation) WriteMetricsJSON(w io.Writer) error {
	return o.rec.Metrics().WriteJSON(w)
}

// SimulateObserved is Simulate with observability attached: it additionally
// returns the recorded protocol events and metrics. Tracing never perturbs the
// simulation — the returned Result is identical to an untraced Simulate run
// with the same arguments.
func SimulateObserved(w Workload, p Protocol, s System, opt TraceOptions) (*Result, *Observation, error) {
	nc, err := s.netConfig()
	if err != nil {
		return nil, nil, err
	}
	b, err := builder(p)
	if err != nil {
		return nil, nil, err
	}
	cores, progs, err := w.Programs(nc)
	if err != nil {
		return nil, nil, err
	}
	rec := opt.Recorder
	if rec == nil {
		rec = obs.New()
		if opt.MetricsOnly {
			rec = obs.NewMetricsOnly()
		}
		rec.SetSample(opt.Sample)
	}
	sys := proto.NewSystem(s.Seed, nc, s.mode())
	sys.Workers = s.SimWorkers
	sys.Observe(rec)
	run, err := proto.Exec(sys, b, cores, progs)
	if err != nil {
		return nil, nil, err
	}
	return &Result{run: run}, &Observation{rec: rec}, nil
}
