// KV service: run the sharded, replicated key-value service under all four
// protocols at increasing offered load, and print the throughput and tail
// latency each one sustains — the service-level view of what directory
// ordering buys. CORD pipelines the replication releases, so its put path
// barely stalls; SO serializes them, and the stall surfaces directly as
// request p99.
package main

import (
	"fmt"
	"log"

	"cord"
)

func main() {
	// A closed-loop service: 16 client sessions per server core, each issuing
	// 16 requests (50% gets) with ~2000 cycles of think time between them.
	// Every put replicates its value to a mirror host before completing, and
	// every get of a replicated version waits until it is visible locally.
	w := cord.KVServiceDefault()
	w.Clients = 16
	w.Requests = 16

	sys := cord.CXLSystem()
	sys.Hosts = 4

	fmt.Println("sharded KV service, 4 hosts, CXL (150ns links)")
	fmt.Printf("%-6s %6s %14s %10s %10s %10s\n",
		"proto", "load", "achieved(r/s)", "p50(ns)", "p99(ns)", "put-p99")
	for _, p := range []cord.Protocol{cord.CORD, cord.SO, cord.MP, cord.WB} {
		for _, mult := range []float64{1, 4} {
			cfg := w
			cfg.ThinkCycles = w.ThinkCycles / mult // shorter think = higher load
			r, err := cord.SimulateKV(cfg, p, sys)
			if err != nil {
				log.Fatal(err)
			}
			_, p50, _, p99 := r.LatencyNanos()
			_, putP99 := r.GetPutP99Nanos()
			fmt.Printf("%-6s %6.0fx %14.0f %10.0f %10.0f %10.0f\n",
				p, mult, r.RequestsPerSecond(), p50, p99, putP99)
		}
	}
}
