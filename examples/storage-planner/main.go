// storage-planner sizes CORD's look-up tables for a deployment: it runs the
// worst-case all-to-all workload (§5.4's ATA) and the storage-hungriest real
// applications at increasing system scales, reports the peak table bytes a
// processor and a directory actually need (Fig. 11's measurement), and shows
// what happens when the tables are provisioned below that point — the
// protocol stays correct but stalls (§4.3).
package main

import (
	"fmt"
	"log"

	"cord"
)

func main() {
	fmt.Println("peak protocol-table storage needed for zero-stall operation")
	fmt.Printf("%-8s %6s %12s %12s\n", "workload", "hosts", "proc bytes", "dir bytes")
	for _, hosts := range []int{2, 4, 8} {
		sys := cord.CXLSystem()
		sys.Hosts = hosts

		for _, w := range []cord.Workload{mustApp("SSSP", hosts), cord.Alltoall(hosts, 40)} {
			r, err := cord.Simulate(w, cord.CORD, sys)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %6d %12d %12d\n",
				w.Name, hosts, r.PeakProcTableBytes(), r.PeakDirTableBytes())
		}
	}

	fmt.Println()
	fmt.Println("even the adversarial all-to-all broadcast needs only ~1 KB per")
	fmt.Println("directory — four orders of magnitude below a 2 MB LLC slice —")
	fmt.Println("which is why CORD's area and power overheads stay under 1% (§5.4).")
}

func mustApp(name string, hosts int) cord.Workload {
	w, err := cord.App(name)
	if err != nil {
		log.Fatal(err)
	}
	w.Hosts = hosts
	if w.Fanout >= hosts {
		w.Fanout = hosts - 1
	}
	return w
}
