// mpi-pipeline runs the DOE MOCFE mini-app trace — a neutron-transport
// pipeline that exchanges very fine-grained (8-256 B) messages with six
// partner hosts per sweep — under all four coherence schemes on CXL and UPI,
// reproducing the per-application view of the paper's Fig. 7.
//
// MOCFE is the kind of workload CORD was designed for: its communication-
// to-computation ratio is high and its synchronization is fine-grained, so
// source ordering's acknowledgment stalls dominate; but its fan-out is also
// high, so it is one of the few workloads where CORD pays measurable
// inter-directory notification traffic.
package main

import (
	"fmt"
	"log"
	"sort"

	"cord"
)

func main() {
	app, err := cord.App("MOCFE")
	if err != nil {
		log.Fatal(err)
	}

	for _, sys := range []struct {
		name string
		cfg  cord.System
	}{
		{"CXL (150ns inter-host)", cord.CXLSystem()},
		{"UPI (50ns inter-host)", cord.UPISystem()},
	} {
		results, err := cord.Compare(app, sys.cfg)
		if err != nil {
			log.Fatal(err)
		}
		base := results[cord.CORD]
		fmt.Printf("== MOCFE on %s ==\n", sys.name)
		fmt.Printf("%-6s %12s %12s %9s %9s %14s\n",
			"proto", "time(ns)", "traffic(B)", "t/CORD", "B/CORD", "notify bytes")
		protos := make([]cord.Protocol, 0, len(results))
		for p := range results {
			protos = append(protos, p)
		}
		sort.Slice(protos, func(i, j int) bool { return protos[i] < protos[j] })
		for _, p := range protos {
			r := results[p]
			fmt.Printf("%-6s %12.0f %12d %9.3f %9.3f %14d\n",
				p, r.ExecNanos(), r.InterHostBytes(),
				r.ExecNanos()/base.ExecNanos(),
				float64(r.InterHostBytes())/float64(base.InterHostBytes()),
				r.NotificationBytes())
		}
		fmt.Println()
	}

	fmt.Println("Note how CORD approaches MP's performance while preserving")
	fmt.Println("system-wide release consistency, and how its notification")
	fmt.Println("traffic (absent in every other scheme) is the price of scaling")
	fmt.Println("directory ordering across six partner directories.")
}
