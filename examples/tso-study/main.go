// tso-study reproduces the spirit of §6: what happens to the write-through
// coherence schemes when the memory model tightens from release consistency
// to x86-style Total Store Ordering, where *every* store must be ordered.
//
// Under RC only Releases need ordering; under TSO source ordering must
// acknowledge and serialize every write-through store, while CORD orders
// them at the directory through the Release-Release mechanism — paying acks
// and notifications on the wire but never stalling issue.
package main

import (
	"fmt"
	"log"

	"cord"
)

func main() {
	app, err := cord.App("PAD")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Chai PAD under both memory models (CXL fabric):")
	fmt.Printf("%-22s %12s %12s %12s\n", "", "CORD", "SO", "SO/CORD")
	for _, m := range []struct {
		name  string
		model cord.Consistency
	}{
		{"release consistency", cord.ReleaseConsistency},
		{"total store order", cord.TotalStoreOrder},
	} {
		sys := cord.CXLSystem()
		sys.Model = m.model
		co, err := cord.Simulate(app, cord.CORD, sys)
		if err != nil {
			log.Fatal(err)
		}
		so, err := cord.Simulate(app, cord.SO, sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.0fns %10.0fns %11.2fx\n",
			m.name, co.ExecNanos(), so.ExecNanos(), so.ExecNanos()/co.ExecNanos())
	}

	fmt.Println()
	fmt.Println("Traffic under TSO (CORD must acknowledge every store and fan out")
	fmt.Println("notifications, so its wire cost rises while its latency does not):")
	sys := cord.CXLSystem()
	sys.Model = cord.TotalStoreOrder
	co, err := cord.Simulate(app, cord.CORD, sys)
	if err != nil {
		log.Fatal(err)
	}
	so, err := cord.Simulate(app, cord.SO, sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  CORD: %8d B total, %7d B acks, %7d B notifications\n",
		co.InterHostBytes(), co.AckBytes(), co.NotificationBytes())
	fmt.Printf("  SO:   %8d B total, %7d B acks\n", so.InterHostBytes(), so.AckBytes())
}
