// litmus demonstrates §3.2 / Fig. 3 of the paper: message passing's
// point-to-point ordering cannot provide release consistency across three
// processing units, while CORD's directory ordering can — verified by
// exhaustive model checking rather than simulation.
//
// The program checks the ISA2 litmus test (T0 writes X then releases Y; T1
// acquires Y then releases Z; T2 acquires Z then reads X — release
// consistency forbids T2 reading the stale X) under CORD, source ordering,
// and message passing, and then re-checks CORD with deliberately
// under-provisioned hardware (2-bit epochs, saturating store counters,
// single-entry tables) to show the stall-based overflow handling is sound.
package main

import (
	"fmt"
	"log"

	"cord"
)

func main() {
	var isa2 cord.LitmusTest
	for _, t := range cord.LitmusSuite() {
		if t.Name == "ISA2" {
			isa2 = t
		}
	}
	fmt.Println("ISA2 (Fig. 3): Y lives at T1's PU; X and Z at T2's PU")
	fmt.Println("forbidden outcome: r1=Y reads 1, r2=Z reads 1, but r3=X reads 0")
	fmt.Println()

	for _, p := range []cord.Protocol{cord.CORD, cord.SO, cord.MP} {
		r, err := cord.Verify(isa2, p)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "forbidden outcome UNREACHABLE — release consistency holds"
		if r.ForbiddenReachable {
			verdict = "forbidden outcome REACHED — release consistency VIOLATED"
		}
		fmt.Printf("%-4s: %s\n      (%d states, %d distinct outcomes, deadlock=%v)\n",
			p, verdict, r.States, r.Outcomes, r.Deadlocked)
	}

	fmt.Println()
	stress, err := cord.VerifyCORDStress(isa2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CORD with 2-bit epochs + single-entry tables: pass=%v (%d states)\n",
		stress.Pass, stress.States)

	total, passed, err := cord.VerifyAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull built-in suite: %d/%d litmus instances pass across all\n", passed, total)
	fmt.Println("placements and configurations (the paper's Murphi validation, §4.5)")
}
