// Quickstart: simulate a producer writing through 4 KB of data to a remote
// host and publishing a Release flag, under CORD and under source ordering,
// on the paper's CXL system — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"cord"
)

func main() {
	// 64-byte write-through stores, 4 KB per synchronization round, one
	// partner host, 100 rounds (the defaults of the paper's §5.3
	// micro-benchmark).
	w := cord.Microbench(64, 4096, 1, 100)
	sys := cord.CXLSystem()

	cordRes, err := cord.Simulate(w, cord.CORD, sys)
	if err != nil {
		log.Fatal(err)
	}
	soRes, err := cord.Simulate(w, cord.SO, sys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("producer-consumer handoff, 4KB rounds, CXL (150ns links)")
	fmt.Printf("  CORD: %8.0f ns, %7d bytes on the wire, %5.1f%% ack stall\n",
		cordRes.ExecNanos(), cordRes.InterHostBytes(), 100*cordRes.AckStallFraction())
	fmt.Printf("  SO:   %8.0f ns, %7d bytes on the wire, %5.1f%% ack stall\n",
		soRes.ExecNanos(), soRes.InterHostBytes(), 100*soRes.AckStallFraction())
	fmt.Printf("\nCORD is %.2fx faster and moves %.2fx less traffic:\n",
		soRes.ExecNanos()/cordRes.ExecNanos(),
		float64(soRes.InterHostBytes())/float64(cordRes.InterHostBytes()))
	fmt.Println("directory ordering eliminates the per-store acknowledgments")
	fmt.Printf("(SO spent %d ack bytes; CORD spent %d — only its Releases are acked)\n",
		soRes.AckBytes(), cordRes.AckBytes())
}
