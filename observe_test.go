package cord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"cord/internal/obs"
	"cord/internal/stats"
)

func smallSystem() System {
	s := CXLSystem()
	s.Hosts = 4
	s.CoresPerHost = 4
	return s
}

// TestObservedTrafficMatchesStats is the exporter-fidelity acceptance check:
// the per-class byte totals recovered from the exported JSONL event stream
// (at the default sample=1) must exactly equal the stats.Traffic aggregates
// of the same run, and so must the metrics registry.
func TestObservedTrafficMatchesStats(t *testing.T) {
	w := Microbench(64, 1024, 2, 10)
	r, o, err := SimulateObserved(w, CORD, smallSystem(), TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &r.Raw().Traffic

	// Recover per-class byte totals from the JSONL export's send records.
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	byName := map[string]stats.MsgClass{}
	for c := 0; c < stats.NumClasses; c++ {
		byName[stats.MsgClass(c).String()] = stats.MsgClass(c)
	}
	var fromJSONL [stats.NumClasses]uint64
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	for sc.Scan() {
		var ev struct {
			K     string `json:"k"`
			Class string `json:"class"`
			Bytes uint64 `json:"bytes"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line: %v\n%s", err, sc.Text())
		}
		if ev.K != "send" {
			continue
		}
		c, ok := byName[ev.Class]
		if !ok {
			t.Fatalf("unknown class %q in JSONL", ev.Class)
		}
		fromJSONL[c] += ev.Bytes
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	m := o.Metrics()
	for c := 0; c < stats.NumClasses; c++ {
		want := tr.InterBytes[c] + tr.IntraBytes[c]
		if fromJSONL[c] != want {
			t.Errorf("class %v: JSONL total %d bytes, stats %d",
				stats.MsgClass(c), fromJSONL[c], want)
		}
		if got := m.TotalBytes(stats.MsgClass(c)); got != want {
			t.Errorf("class %v: metrics total %d bytes, stats %d",
				stats.MsgClass(c), got, want)
		}
		if m.MsgsInter[c] != tr.InterMsgs[c] || m.MsgsIntra[c] != tr.IntraMsgs[c] {
			t.Errorf("class %v: metrics msgs (%d,%d), stats (%d,%d)",
				stats.MsgClass(c), m.MsgsIntra[c], m.MsgsInter[c],
				tr.IntraMsgs[c], tr.InterMsgs[c])
		}
	}
	if tr.TotalInter() == 0 {
		t.Fatal("vacuous: workload produced no inter-host traffic")
	}
}

// TestObservedDoesNotPerturb asserts tracing changes nothing about the
// simulation: an observed run and a plain run with identical inputs produce
// identical time and traffic.
func TestObservedDoesNotPerturb(t *testing.T) {
	w := Microbench(64, 1024, 2, 10)
	for _, p := range Protocols() {
		plain, err := Simulate(w, p, smallSystem())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		traced, _, err := SimulateObserved(w, p, smallSystem(), TraceOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if plain.Raw().Time != traced.Raw().Time {
			t.Errorf("%s: tracing changed execution time: %d vs %d",
				p, plain.Raw().Time, traced.Raw().Time)
		}
		if plain.Raw().Traffic != traced.Raw().Traffic {
			t.Errorf("%s: tracing changed traffic accounting", p)
		}
	}
}

// TestObservedChromeTraceValid asserts the Chrome trace export is one valid
// JSON document with populated traceEvents (the Perfetto loading contract).
func TestObservedChromeTraceValid(t *testing.T) {
	w := Microbench(64, 1024, 2, 5)
	_, o, err := SimulateObserved(w, CORD, smallSystem(), TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

// TestObservedSampling checks that sampling thins the hop-event stream while
// metrics stay complete, and that whole message lifecycles are kept coherent:
// every sampled send has exactly one matching deliver.
func TestObservedSampling(t *testing.T) {
	w := Microbench(64, 1024, 2, 10)
	_, full, err := SimulateObserved(w, CORD, smallSystem(), TraceOptions{Sample: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, thin, err := SimulateObserved(w, CORD, smallSystem(), TraceOptions{Sample: 8})
	if err != nil {
		t.Fatal(err)
	}
	count := func(evs []obs.Event, k obs.Kind) int {
		n := 0
		for _, ev := range evs {
			if ev.Kind == k {
				n++
			}
		}
		return n
	}
	fullSends := count(full.Events(), obs.KSend)
	thinSends := count(thin.Events(), obs.KSend)
	if thinSends == 0 || thinSends*4 > fullSends {
		t.Errorf("1-in-8 sampling kept %d of %d sends", thinSends, fullSends)
	}
	if got := count(thin.Events(), obs.KDeliver); got != thinSends {
		t.Errorf("sampled lifecycles incoherent: %d sends but %d delivers", thinSends, got)
	}
	// Metrics are never sampled: both runs agree exactly.
	for c := 0; c < stats.NumClasses; c++ {
		cl := stats.MsgClass(c)
		if full.Metrics().TotalBytes(cl) != thin.Metrics().TotalBytes(cl) {
			t.Errorf("class %v: sampling changed metrics", cl)
		}
	}
}
