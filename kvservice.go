package cord

import (
	"cord/internal/obs"
	rt "cord/internal/obs/runtime"
	"cord/internal/proto"
	"cord/internal/sim"
	"cord/internal/stats"
	"cord/internal/workload/kvsvc"
)

// KVService is the service-level workload: a sharded, replicated key-value
// service under closed- or open-loop client load, producing its op stream
// reactively at simulated time (it is kvsvc.Config; see that type's fields
// for the full parameter set). Where Workload measures how fast a protocol
// finishes a fixed trace, KVService measures how many requests per second it
// serves at what tail latency.
type KVService = kvsvc.Config

// KVServiceDefault returns a small closed-loop service configuration that
// differentiates the four protocols in a few hundred thousand simulated
// cycles. Override fields as needed; zero-valued niceties are filled in.
func KVServiceDefault() KVService { return kvsvc.Default() }

// KVResult exposes the measurements of one KV-service simulation: the usual
// run statistics plus the service-level request outcome.
type KVResult struct {
	run     *stats.Run
	st      kvsvc.Stats
	offered float64 // requests per cycle, from the built service
}

// ExecNanos is the end-to-end execution time in simulated nanoseconds.
func (r *KVResult) ExecNanos() float64 { return r.run.ExecNanos() }

// InterHostBytes is the total inter-PU traffic.
func (r *KVResult) InterHostBytes() uint64 { return r.run.Traffic.TotalInter() }

// Requests is the number of completed service requests (gets + puts).
func (r *KVResult) Requests() uint64 { return r.st.Total() }

// RequestsPerSecond is the achieved service throughput in requests per
// simulated second.
func (r *KVResult) RequestsPerSecond() float64 {
	ns := r.run.ExecNanos()
	if ns <= 0 {
		return 0
	}
	return float64(r.st.Total()) / (ns * 1e-9)
}

// OfferedRequestsPerSecond is the configured offered load in requests per
// simulated second — exact for the open loop, the zero-service-time ceiling
// for the closed loop. Achieved throughput saturating below this value means
// the service (or the protocol's ordering stalls) is the bottleneck.
func (r *KVResult) OfferedRequestsPerSecond() float64 {
	return r.offered * 1e9 / sim.Nanos(1)
}

// LatencyNanos returns the arrival-to-completion request latency across both
// request classes: mean, p50, p95 and p99, in nanoseconds.
func (r *KVResult) LatencyNanos() (mean, p50, p95, p99 float64) {
	d := r.st.Overall()
	return d.Mean() * sim.Nanos(1), sim.Nanos(d.Quantile(0.5)),
		sim.Nanos(d.Quantile(0.95)), sim.Nanos(d.Quantile(0.99))
}

// GetPutP99Nanos returns the per-class p99 request latency in nanoseconds.
// Gets wait on cross-host version propagation; puts wait on release handling,
// so the split shows which side a protocol's ordering policy taxes.
func (r *KVResult) GetPutP99Nanos() (get, put float64) {
	return sim.Nanos(r.st.Latency[obs.ReqGet].Quantile(0.99)),
		sim.Nanos(r.st.Latency[obs.ReqPut].Quantile(0.99))
}

// Raw returns the underlying run statistics for advanced inspection.
func (r *KVResult) Raw() *stats.Run { return r.run }

// simulateKV is the shared SimulateKV/SimulateKVObserved driver.
func simulateKV(w KVService, p Protocol, s System, rec *obs.Recorder, col *rt.Collector) (*KVResult, error) {
	nc, err := s.netConfig()
	if err != nil {
		return nil, err
	}
	b, err := builder(p)
	if err != nil {
		return nil, err
	}
	svc, err := w.Build(nc)
	if err != nil {
		return nil, err
	}
	sys := proto.NewSystem(s.Seed, nc, s.mode())
	sys.Workers = s.SimWorkers
	if rec != nil {
		sys.Observe(rec)
	}
	if col != nil {
		sys.AttachRuntime(col)
	}
	run, err := proto.ExecSources(sys, b, svc.Cores(), svc.Sources())
	if err != nil {
		return nil, err
	}
	return &KVResult{run: run, st: svc.Stats(), offered: svc.OfferedPerCycle()}, nil
}

// SimulateKV runs the KV service under a protocol on a system. Deterministic
// for a fixed System.Seed and KVService.Seed, independent of SimWorkers.
func SimulateKV(w KVService, p Protocol, s System) (*KVResult, error) {
	return simulateKV(w, p, s, nil, nil)
}

// SimulateKVObserved is SimulateKV with observability attached: request
// completions appear as req-done events in the stream and as latency
// histograms in the metrics registry (JSON export and Prometheus families).
func SimulateKVObserved(w KVService, p Protocol, s System, opt TraceOptions) (*KVResult, *Observation, error) {
	rec := opt.Recorder
	if rec == nil {
		rec = obs.New()
		if opt.MetricsOnly {
			rec = obs.NewMetricsOnly()
		}
		rec.SetSample(opt.Sample)
	}
	r, err := simulateKV(w, p, s, rec, opt.Runtime)
	if err != nil {
		return nil, nil, err
	}
	return r, &Observation{rec: rec}, nil
}
