package cord

import (
	"fmt"

	"cord/internal/litmus"
)

// The verification half of the public API wraps the exhaustive
// explicit-state model checker of internal/litmus (the repository's stand-in
// for the paper's Murphi validation, §4.5).

// LitmusTest is an exhaustive-interleaving consistency test. Build custom
// tests with the litmus op constructors re-exported below, or use
// LitmusSuite for the built-in shapes.
type LitmusTest = litmus.Test

// LitmusOutcome is a terminal state (registers + final memory).
type LitmusOutcome = litmus.Outcome

// LitmusOp is one operation in a litmus program.
type LitmusOp = litmus.Op

// Litmus operation constructors (addresses LitmusX..LitmusW).
var (
	LitmusSt    = litmus.St
	LitmusStRel = litmus.StRel
	LitmusLd    = litmus.Ld
	LitmusLdAcq = litmus.LdAcq
)

// Canonical litmus addresses.
const (
	LitmusX = litmus.X
	LitmusY = litmus.Y
	LitmusZ = litmus.Z
	LitmusW = litmus.W
)

// LitmusSuite returns the built-in litmus shapes (MP, ISA2, WRC, ...).
func LitmusSuite() []LitmusTest { return litmus.BaseTests() }

// LitmusVariants expands a shape across all directory placements.
func LitmusVariants(t LitmusTest) []LitmusTest { return litmus.Variants(t) }

// VerifyResult reports a model-checking run.
type VerifyResult struct {
	// Pass means no forbidden outcome, no deadlock, no epoch-window
	// violation, and the sanity outcome (if any) was reachable.
	Pass bool
	// ForbiddenReachable reports the forbidden outcome was produced —
	// expected when checking message passing against ISA2-class tests.
	ForbiddenReachable bool
	// Deadlocked reports a stuck non-terminal state.
	Deadlocked bool
	// States is the number of distinct states explored.
	States int
	// Outcomes is the number of distinct terminal outcomes.
	Outcomes int
}

func wrap(r litmus.Result) VerifyResult {
	return VerifyResult{
		Pass:               r.Pass(),
		ForbiddenReachable: r.Forbidden,
		Deadlocked:         r.Deadlock,
		States:             r.States,
		Outcomes:           len(r.Outcomes),
	}
}

// Verify model-checks a litmus test under a protocol (CORD, SO or MP; WB is
// not modeled by the checker).
func Verify(t LitmusTest, p Protocol) (VerifyResult, error) {
	cfg := litmus.DefaultConfig()
	switch p {
	case CORD:
		cfg.Protos = []litmus.ProtoKind{litmus.CORDP}
	case SO:
		cfg.Protos = []litmus.ProtoKind{litmus.SOP}
	case MP:
		cfg.Protos = []litmus.ProtoKind{litmus.MPP}
	default:
		return VerifyResult{}, fmt.Errorf("cord: no litmus model for protocol %q", p)
	}
	r, err := litmus.Check(t, cfg)
	if err != nil {
		return VerifyResult{}, err
	}
	return wrap(r), nil
}

// VerifyCORDStress model-checks a test under CORD with deliberately
// under-provisioned hardware: 2-bit epochs, saturating store counters and
// single-entry tables (§4.5's customized corner cases).
func VerifyCORDStress(t LitmusTest) (VerifyResult, error) {
	r, err := litmus.Check(t, litmus.TinyConfig())
	if err != nil {
		return VerifyResult{}, err
	}
	return wrap(r), nil
}

// VerifyAll runs the complete built-in suite (every shape, every placement)
// under every CORD configuration (default, tiny, mixed CORD/SO systems) and
// returns (instances run, instances passed).
func VerifyAll() (total, passed int, err error) {
	suite := litmus.FullCordSuite()
	for _, cv := range litmus.CordConfigs() {
		sr, err := litmus.RunSuite(suite, cv.Cfg)
		if err != nil {
			return total, passed, fmt.Errorf("cord: suite %s: %w", cv.Name, err)
		}
		total += sr.Total
		passed += sr.Passed
	}
	return total, passed, nil
}
