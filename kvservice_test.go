package cord

import (
	"bytes"
	"testing"

	"cord/internal/obs"
)

func kvTestService() KVService {
	w := KVServiceDefault()
	w.Clients = 4
	w.Requests = 6
	w.ThinkCycles = 500
	return w
}

func TestSimulateKVQuickstart(t *testing.T) {
	r, err := SimulateKV(kvTestService(), CORD, fastSystem())
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests() == 0 {
		t.Fatal("no requests completed")
	}
	if r.RequestsPerSecond() <= 0 {
		t.Fatalf("rps = %v", r.RequestsPerSecond())
	}
	mean, p50, p95, p99 := r.LatencyNanos()
	if mean <= 0 || p50 <= 0 || p95 < p50 || p99 < p95 {
		t.Fatalf("latency order violated: mean %v p50 %v p95 %v p99 %v", mean, p50, p95, p99)
	}
	g, p := r.GetPutP99Nanos()
	if g <= 0 || p <= 0 {
		t.Fatalf("per-class p99: get %v put %v", g, p)
	}
	if r.InterHostBytes() == 0 {
		t.Fatal("a replicated service must move inter-host bytes")
	}
	if r.Raw() == nil {
		t.Fatal("Raw returned nil")
	}
}

func TestSimulateKVAllProtocols(t *testing.T) {
	var base uint64
	for i, p := range []Protocol{CORD, SO, MP, WB} {
		r, err := SimulateKV(kvTestService(), p, fastSystem())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if i == 0 {
			base = r.Requests()
		} else if r.Requests() != base {
			t.Fatalf("%s completed %d requests, want %d — the census is protocol-independent", p, r.Requests(), base)
		}
	}
}

// TestSimulateKVObservedEmitsRequests checks the observability wiring end to
// end: req-done events in the stream, request-latency histograms in metrics.
func TestSimulateKVObservedEmitsRequests(t *testing.T) {
	r, o, err := SimulateKVObserved(kvTestService(), CORD, fastSystem(), TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var reqDone uint64
	for _, e := range o.Events() {
		if e.Kind == obs.KReqDone {
			reqDone++
		}
	}
	if reqDone != r.Requests() {
		t.Fatalf("req-done events = %d, want %d", reqDone, r.Requests())
	}
	var buf bytes.Buffer
	if err := o.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"requests"`)) {
		t.Fatal("metrics JSON missing request-latency rows")
	}
}

// TestSimulateKVMatchesObserved pins the tracing-never-perturbs contract for
// the reactive path: tracing must not change the simulated outcome.
func TestSimulateKVMatchesObserved(t *testing.T) {
	a, err := SimulateKV(kvTestService(), SO, fastSystem())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SimulateKVObserved(kvTestService(), SO, fastSystem(), TraceOptions{MetricsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecNanos() != b.ExecNanos() || a.Requests() != b.Requests() || a.InterHostBytes() != b.InterHostBytes() {
		t.Fatalf("tracing perturbed the run: %v/%d/%d vs %v/%d/%d",
			a.ExecNanos(), a.Requests(), a.InterHostBytes(),
			b.ExecNanos(), b.Requests(), b.InterHostBytes())
	}
}

func TestSimulateKVRejectsBadConfig(t *testing.T) {
	w := kvTestService()
	w.GetPct = 150
	if _, err := SimulateKV(w, CORD, fastSystem()); err == nil {
		t.Fatal("GetPct=150 accepted")
	}
	s := fastSystem()
	s.Hosts = 1
	if _, err := SimulateKV(kvTestService(), CORD, s); err == nil {
		t.Fatal("single-host system accepted — replication needs a remote host")
	}
}
