package cord

import (
	"fmt"
	"io"

	"cord/internal/proto"
	"cord/internal/trace"
)

// Trace is a recorded multi-core memory-operation trace (the paper
// evaluates the DOE mini-apps from traces, §5.1). Produce one with
// RecordTrace, serialize with WriteTrace/ReadTrace, and run it with
// SimulateTrace.
type Trace = trace.Trace

// TraceStats is a Table 2-style characterization of a trace.
type TraceStats = trace.Stats

// RecordTrace materializes a workload into a trace for the given system
// shape (the trace embeds concrete addresses, so the shape matters).
func RecordTrace(w Workload, s System) (*Trace, error) {
	nc, err := s.netConfig()
	if err != nil {
		return nil, err
	}
	return trace.FromWorkload(w, nc)
}

// WriteTrace serializes a trace in the cordtrace text format.
func WriteTrace(dst io.Writer, t *Trace) error { return trace.Write(dst, t) }

// ReadTrace parses a cordtrace file.
func ReadTrace(src io.Reader) (*Trace, error) { return trace.Read(src) }

// CharacterizeTrace computes Table 2-style statistics.
func CharacterizeTrace(t *Trace) TraceStats { return trace.Characterize(t) }

// SimulateTrace replays a recorded trace under a protocol.
func SimulateTrace(t *Trace, p Protocol, s System) (*Result, error) {
	nc, err := s.netConfig()
	if err != nil {
		return nil, err
	}
	for _, c := range t.Cores {
		if c.Host >= nc.Hosts || c.Tile >= nc.TilesPerHost {
			return nil, fmt.Errorf("cord: trace core %v outside the %dx%d system",
				c, nc.Hosts, nc.TilesPerHost)
		}
	}
	b, err := builder(p)
	if err != nil {
		return nil, err
	}
	sys := proto.NewSystem(s.Seed, nc, s.mode())
	run, err := proto.Exec(sys, b, t.Cores, t.Progs)
	if err != nil {
		return nil, err
	}
	return &Result{run: run}, nil
}
