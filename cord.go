// Package cord is a from-scratch reproduction of "CORD: Low-Latency,
// Bandwidth-Efficient and Scalable Release Consistency via Directory
// Ordering" (ISCA 2025): the CORD cache-coherence protocol, the baselines it
// is evaluated against (source ordering, message passing, write-back MESI,
// monolithic sequence numbers), a deterministic multi-PU interconnect
// simulator to run them on, an exhaustive model checker for their
// consistency guarantees, and the workloads and harnesses that regenerate
// every figure and table of the paper's evaluation.
//
// # Quick start
//
//	w := cord.Microbench(64, 4096, 1, 100) // 64B stores, 4KB sync, fanout 1
//	r, err := cord.Simulate(w, cord.CORD, cord.CXLSystem())
//	if err != nil { ... }
//	fmt.Println(r.ExecNanos(), r.InterHostBytes())
//
// Simulate runs a workload under a protocol on a simulated multi-host
// system (Table 1 of the paper: 8 CPU hosts x 8 cores, 2x4 mesh per host,
// one switch between hosts). Use Compare to run all protocols at once, the
// Verify functions to model-check consistency, and the exp subcommand
// binaries (cmd/cordbench, cmd/cordcheck, cmd/cordsim) for the full paper
// evaluation.
package cord

import (
	"fmt"

	"cord/internal/noc"
	"cord/internal/proto"
	"cord/internal/proto/cord"
	"cord/internal/proto/mp"
	"cord/internal/proto/so"
	"cord/internal/proto/wb"
	"cord/internal/stats"
	"cord/internal/workload"
)

// Protocol names a coherence protocol.
type Protocol string

// The compared protocols.
const (
	// CORD orders write-through stores at the directory (the paper's
	// contribution).
	CORD Protocol = "CORD"
	// SO is source ordering: per-store acknowledgments, releases stall.
	SO Protocol = "SO"
	// MP is PCIe-style message passing: posted writes, point-to-point
	// destination ordering only.
	MP Protocol = "MP"
	// WB is the source-ordered write-back MESI baseline.
	WB Protocol = "WB"
)

// Protocols lists the four end-to-end schemes.
func Protocols() []Protocol { return []Protocol{MP, CORD, SO, WB} }

// Consistency selects the enforced memory model.
type Consistency int

const (
	// ReleaseConsistency is the paper's primary target (§2.2).
	ReleaseConsistency Consistency = iota
	// TotalStoreOrder is §6's x86-style study.
	TotalStoreOrder
)

// System describes the simulated multi-PU platform.
type System struct {
	// Hosts and CoresPerHost shape the platform (Table 1: 8 x 8).
	Hosts        int
	CoresPerHost int
	// InterHostNs is the one-way inter-host latency (150 CXL, 50 UPI).
	InterHostNs float64
	// LinkGBs is the per-port bandwidth in GB/s.
	LinkGBs float64
	// JitterCycles models adaptive-routing delivery skew.
	JitterCycles int
	// RingTopology replaces the single inter-host switch with a
	// bidirectional ring (per-link latency InterHostNs).
	RingTopology bool
	// MeshCols overrides the intra-host mesh width (columns); 0 keeps the
	// Table 1 default (4, i.e. a 2x4 mesh for 8 cores). It is clamped to
	// CoresPerHost.
	MeshCols int
	// Model is the enforced consistency model.
	Model Consistency
	// Seed drives all randomness; equal seeds give identical results.
	Seed int64
	// SimWorkers bounds how many host shards the conservative-parallel
	// simulation engine advances concurrently (<= 1 means serial). Results
	// are byte-identical for every value; it only trades wall-clock time.
	// Single-host systems always run on one engine.
	SimWorkers int
}

// CXLSystem returns the paper's CXL configuration (Table 1).
func CXLSystem() System {
	return System{Hosts: 8, CoresPerHost: 8, InterHostNs: 150, LinkGBs: 64,
		JitterCycles: 4, Seed: 42}
}

// UPISystem returns the paper's UPI configuration.
func UPISystem() System {
	s := CXLSystem()
	s.InterHostNs = 50
	return s
}

func (s System) netConfig() (noc.Config, error) {
	nc := noc.CXLConfig()
	if s.Hosts > 0 {
		nc.Hosts = s.Hosts
	}
	if s.CoresPerHost > 0 {
		nc.TilesPerHost = s.CoresPerHost
		if nc.TilesPerHost < nc.MeshCols {
			nc.MeshCols = nc.TilesPerHost
		}
	}
	if s.MeshCols > 0 {
		nc.MeshCols = s.MeshCols
		if nc.MeshCols > nc.TilesPerHost {
			nc.MeshCols = nc.TilesPerHost
		}
	}
	if s.InterHostNs > 0 {
		nc.InterHostNs = s.InterHostNs
	}
	if s.LinkGBs > 0 {
		nc.LinkBytesPerCycle = s.LinkGBs / 2 // GB/s -> bytes per 0.5ns cycle
	}
	nc.JitterCycles = s.JitterCycles
	if s.RingTopology {
		nc.Topology = noc.Ring
	}
	return nc, nc.Validate()
}

func (s System) mode() proto.Mode {
	if s.Model == TotalStoreOrder {
		return proto.TSO
	}
	return proto.RC
}

// builder resolves a Protocol name.
func builder(p Protocol) (proto.Builder, error) {
	switch p {
	case CORD:
		return cord.New(), nil
	case SO:
		return so.New(), nil
	case MP:
		return mp.New(), nil
	case WB:
		return wb.New(), nil
	default:
		return nil, fmt.Errorf("cord: unknown protocol %q", p)
	}
}

// Workload is a communication pattern to simulate. Construct one with
// Microbench, Alltoall, App/Apps, or fill the struct directly (it is
// workload.Pattern; see that type's fields for the full parameter set).
type Workload = workload.Pattern

// Microbench is the §5.3 sensitivity micro-benchmark: a single thread
// repeatedly writing `syncBytes` of `storeBytes`-granularity write-through
// stores to `fanout` other hosts, then releasing and waiting for completion,
// for `rounds` rounds.
func Microbench(storeBytes, syncBytes, fanout, rounds int) Workload {
	return workload.Micro(storeBytes, syncBytes, fanout, rounds)
}

// Alltoall is the §5.4 ATA storage stressor: every host broadcasts 8 bytes
// to every other host each round.
func Alltoall(hosts, rounds int) Workload {
	return workload.ATA(hosts, rounds)
}

// App returns one of the paper's ten evaluated applications by name
// (PR, SSSP, PAD, TQH, HSTI, TRNS, MOCFE, CMC-2D, BigFFT, CR).
func App(name string) (Workload, error) { return workload.App(name) }

// Apps returns the full Table 2 application suite.
func Apps() []Workload { return workload.Apps() }

// Result exposes the measurements of one simulation.
type Result struct {
	run *stats.Run
}

// ExecNanos is the end-to-end execution time in simulated nanoseconds.
func (r *Result) ExecNanos() float64 { return r.run.ExecNanos() }

// InterHostBytes is the total inter-PU traffic, the paper's traffic metric.
func (r *Result) InterHostBytes() uint64 { return r.run.Traffic.TotalInter() }

// AckBytes is the inter-PU traffic spent on acknowledgments.
func (r *Result) AckBytes() uint64 { return r.run.Traffic.Inter(stats.ClassAck) }

// AckStallFraction is the share of execution time the average core spent
// waiting for write-through acknowledgments (Fig. 2's metric).
func (r *Result) AckStallFraction() float64 { return r.run.StallFraction(stats.StallAckWait) }

// NotificationBytes is CORD's inter-directory notification traffic.
func (r *Result) NotificationBytes() uint64 {
	return r.run.Traffic.Inter(stats.ClassReqNotify) + r.run.Traffic.Inter(stats.ClassNotify)
}

// PeakProcTableBytes and PeakDirTableBytes are the worst per-instance
// protocol-table footprints (Fig. 11's metrics). Zero for protocols without
// ordering tables.
func (r *Result) PeakProcTableBytes() int { return r.run.PeakPerInstance("proc/") }

// PeakDirTableBytes reports the largest directory-side table footprint.
func (r *Result) PeakDirTableBytes() int { return r.run.PeakPerInstance("dir/") }

// ReleaseLatencyNanos returns the mean, p50 (median) and p99 of the
// issue-to-acknowledgment latency of Release stores across all cores, in
// nanoseconds. Zero for protocols that do not acknowledge Releases (MP).
func (r *Result) ReleaseLatencyNanos() (mean, p50, p99 float64) {
	var d stats.Dist
	for i := range r.run.Procs {
		d.Merge(&r.run.Procs[i].ReleaseLatency)
	}
	const cyclesPerNano = 2
	return d.Mean() / cyclesPerNano,
		float64(d.Quantile(0.5)) / cyclesPerNano,
		float64(d.Quantile(0.99)) / cyclesPerNano
}

// Raw returns the underlying run statistics for advanced inspection.
func (r *Result) Raw() *stats.Run { return r.run }

// Simulate runs a workload under a protocol on a system and returns the
// measurements. Runs are deterministic for a fixed System.Seed.
func Simulate(w Workload, p Protocol, s System) (*Result, error) {
	nc, err := s.netConfig()
	if err != nil {
		return nil, err
	}
	b, err := builder(p)
	if err != nil {
		return nil, err
	}
	cores, progs, err := w.Programs(nc)
	if err != nil {
		return nil, err
	}
	sys := proto.NewSystem(s.Seed, nc, s.mode())
	sys.Workers = s.SimWorkers
	run, err := proto.Exec(sys, b, cores, progs)
	if err != nil {
		return nil, err
	}
	return &Result{run: run}, nil
}

// Compare runs the workload under every protocol and returns results keyed
// by protocol. Protocols a workload cannot run under (message passing for
// ISA2-shaped synchronization, §3.2) are absent from the map.
func Compare(w Workload, s System) (map[Protocol]*Result, error) {
	out := make(map[Protocol]*Result)
	for _, p := range Protocols() {
		if p == MP && w.MPIncompatible {
			continue
		}
		r, err := Simulate(w, p, s)
		if err != nil {
			return nil, fmt.Errorf("cord: %s: %w", p, err)
		}
		out[p] = r
	}
	return out, nil
}
